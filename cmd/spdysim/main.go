// Command spdysim regenerates the tables and figures of "Towards a
// SPDY'ier Mobile Web?" (CoNEXT 2013) inside the packet-level simulator.
//
// Usage:
//
//	spdysim -list                 # show available experiments
//	spdysim -exp fig3             # run one experiment
//	spdysim -exp all              # run everything (parallel + cached)
//	spdysim -exp fig3 -runs 10    # more seeds per condition
//	spdysim -exp all -parallel 8  # bound the worker pool explicitly
//	spdysim -har run.har -mode spdy -network 3g
//	                              # one full session, exported as HAR
//	spdysim -exp scale -runs 100000 -fabric 8 -checkpoint ckpt/
//	                              # million-run-scale sweep across 8
//	                              # worker processes, resumable
//	spdysim -exp scale -runs 100000 -fabric 8 -checkpoint ckpt/ -resume
//	                              # replay the journal, run missing shards
//
// Sweeps fan their seeds out across a worker pool (GOMAXPROCS workers by
// default, -parallel overrides) and memoize each (network, mode, flags,
// seed) condition, so -exp all computes every condition exactly once even
// though many experiments sweep the same baselines. Results are
// bit-for-bit identical to serial runs: each seed is an isolated
// deterministic simulation and output slices are ordered by seed.
// -fabric N additionally fans streaming-sweep shards out to N worker
// processes (re-execs of this binary); the shard-order merge keeps the
// output bit-identical at every worker count, and -checkpoint/-resume
// journal completed shards so a killed sweep continues where it stopped.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"time"

	"spdier/internal/browser"
	"spdier/internal/experiment"
	"spdier/internal/fabric"
	"spdier/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (or 'all')")
		runs     = flag.Int("runs", 5, "seeds per condition")
		seed     = flag.Uint64("seed", 1, "base seed")
		parallel = flag.Int("parallel", 0, "max concurrent simulations per sweep (0 = GOMAXPROCS)")
		cachecap = flag.Int("cachecap", -1,
			"max memoized full runs held in memory (0 = unbounded, -1 = auto: 256, shrinking for large -runs)")
		progress = flag.Bool("progress", false, "print a live progress/ETA line for long sweeps to stderr")
		list     = flag.Bool("list", false, "list experiments")
		har      = flag.String("har", "", "run one session and write its page loads as a HAR archive to this file")
		mode     = flag.String("mode", "spdy", "protocol for -har runs: http, spdy, h2 or quic")
		network  = flag.String("network", "3g", "access network for -har runs: 3g, lte or wifi")

		fabricN = flag.Int("fabric", 0,
			"fan sweep shards out to this many worker processes (0 = in-process); results are bit-identical at any count")
		checkpoint = flag.String("checkpoint", "",
			"journal completed sweep shards to this directory (requires -fabric)")
		resume = flag.Bool("resume", false,
			"replay a -checkpoint journal, re-running only missing shards")
		fabricWorker = flag.Bool("fabric-worker", false,
			"internal: run as a fabric worker process (reads jobs on stdin, writes frames on stdout)")

		probestride = flag.Int("probestride", experiment.DefaultProbeStride(),
			"retain every Nth bulk (ack/send) tcp_probe sample; 1 keeps all (counters stay exact regardless)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceout   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	experiment.SetDefaultProbeStride(*probestride)

	if *fabricWorker {
		// Hidden re-exec mode: the fabric coordinator spawns copies of
		// this binary with -fabric-worker and streams shard jobs over
		// stdin/stdout. Everything below (profiles, HAR, experiments)
		// belongs to the coordinator process only.
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceout != "" {
		f, err := os.Create(*traceout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		// The heap profile is written after the sweeps complete, while the
		// result cache is still live — this is how the cache-entry retained
		// size reduction is measured.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *har != "" {
		switch *network {
		case "3g", "lte", "wifi":
		default:
			fmt.Fprintf(os.Stderr, "unknown network %q: use 3g, lte or wifi\n", *network)
			os.Exit(2)
		}
		switch *mode {
		case "http", "spdy", "h2", "quic":
		default:
			fmt.Fprintf(os.Stderr, "unknown mode %q: use http, spdy, h2 or quic\n", *mode)
			os.Exit(2)
		}
		res := experiment.Run(experiment.Options{
			Mode:    browser.Mode(*mode),
			Network: experiment.NetworkKind(*network),
			Seed:    *seed,
		})
		f, err := os.Create(*har)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteHAR(f, res.Records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d page loads (%s over %s) to %s\n", len(res.Records), *mode, *network, *har)
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, s := range experiment.All() {
			fmt.Printf("  %-14s %s\n", s.ID, s.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun one with: spdysim -exp <id>   (or -exp all)")
		}
		return
	}

	experiment.SetParallelism(*parallel)
	cacheCap := *cachecap
	if cacheCap < 0 {
		// Auto mode: the default capacity is generous for figure-style
		// small sweeps, but a large -runs sweep would fill it with
		// hundreds of full Results (~7 MB retained each). The streaming
		// experiments never need them resident, so squeeze the
		// full-Result cache hard and let the per-run aggregate cache
		// carry the scale.
		cacheCap = experiment.DefaultCacheCapacity
		if *runs > 48 {
			cacheCap = 16
		}
	}
	runner := experiment.DefaultRunner()
	runner.SetCacheCapacity(cacheCap)

	var coord *fabric.Coordinator
	if *checkpoint != "" && *fabricN <= 0 {
		fmt.Fprintln(os.Stderr, "-checkpoint requires -fabric N (the journal records fabric shards)")
		os.Exit(2)
	}
	if *fabricN > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot locate own binary for fabric re-exec: %v\n", err)
			os.Exit(1)
		}
		coord, err = fabric.NewCoordinator(fabric.Config{
			Workers:       *fabricN,
			WorkerCmd:     []string{exe, "-fabric-worker", "-probestride", strconv.Itoa(*probestride)},
			CheckpointDir: *checkpoint,
			Resume:        *resume,
			OnProgress:    runner.NoteExternalRuns,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer coord.Close()
		runner.SetShardExecutor(coord)
	}

	h := experiment.Harness{Runs: *runs, Seed: *seed}
	specs := experiment.All()
	if *exp != "all" {
		s, ok := experiment.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		specs = []experiment.Spec{s}
	}
	wall := time.Now()
	if *progress {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-stop:
					fmt.Fprintln(os.Stderr)
					return
				case <-t.C:
					runsDone, sd, st := runner.Progress()
					rate := float64(runsDone) / time.Since(wall).Seconds()
					eta := "?"
					if rate > 0 && st >= sd {
						eta = (time.Duration(float64(st-sd) / rate * float64(time.Second))).Round(time.Second).String()
					}
					fmt.Fprintf(os.Stderr, "\rprogress: %d runs done, %.1f runs/s, sweep %d/%d, sweep ETA %-8s",
						runsDone, rate, sd, st, eta)
				}
			}
		}()
		defer func() { close(stop); <-done }()
	}
	for _, s := range specs {
		start := time.Now()
		rep := s.Run(h)
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %v)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
	cs := runner.CacheStats()
	ss := runner.StreamCacheStats()
	fmt.Printf("total wall clock: %v over %d experiment(s), %d worker(s)\n",
		time.Since(wall).Round(time.Millisecond), len(specs), runner.Parallelism())
	fmt.Printf("sweep cache: %d unique condition(s) simulated, %d replayed from cache (%.0f%% hit rate)\n",
		cs.Misses, cs.Hits, 100*cs.HitRate())
	fmt.Printf("stream cache: %d per-run aggregate(s), %d replayed (%.0f%% hit rate)\n",
		ss.Misses, ss.Hits, 100*ss.HitRate())
	if coord != nil {
		fs := coord.Stats()
		fmt.Printf("fabric: %d worker(s), %d shard(s) computed remotely, %d replayed from journal, %d respawn(s)\n",
			coord.Workers(), fs.ShardsRemote, fs.ShardsReplayed, fs.Respawns)
	}
}
