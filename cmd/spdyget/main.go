// Command spdyget fetches URLs through a live SPDY proxy over a single
// multiplexed session and prints per-stream timings — a miniature of the
// paper's instrumented page loads.
//
//	spdyget -proxy 127.0.0.1:9090 test.example/size/10000 test.example/size/50000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spdier/internal/liveproxy"
	"spdier/internal/spdy"
)

func main() {
	var (
		proxy = flag.String("proxy", "127.0.0.1:9090", "SPDY proxy address")
		prio  = flag.Int("priority", 3, "SPDY priority 0 (highest) to 7")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: spdyget [-proxy addr] host/path [host/path ...]")
		os.Exit(2)
	}

	client, err := liveproxy.DialSPDY(*proxy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	type pending struct {
		url string
		ch  <-chan liveproxy.FetchResult
	}
	var reqs []pending
	for _, arg := range flag.Args() {
		host, path, ok := strings.Cut(arg, "/")
		if !ok {
			path = ""
		}
		ch, err := client.Get(host, "/"+path, spdy.Priority(*prio))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reqs = append(reqs, pending{url: arg, ch: ch})
	}
	failed := false
	for _, r := range reqs {
		res := <-r.ch
		if res.Err != nil {
			fmt.Printf("%-40s ERROR %v\n", r.url, res.Err)
			failed = true
			continue
		}
		fmt.Printf("%-40s %s  %7d bytes  firstByte=%7.2fms  done=%7.2fms\n",
			r.url, res.Status, len(res.Body),
			float64(res.FirstByte.Microseconds())/1000,
			float64(res.Done.Microseconds())/1000)
	}
	if failed {
		os.Exit(1)
	}
}
