// Command spdyproxy runs the live SPDY/3 proxy (the Chromium flip-server
// role in the paper's testbed) and, optionally, an HTTP forward proxy
// (the Squid role) beside it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spdier/internal/liveproxy"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "SPDY listen address")
		httpAddr = flag.String("http", "", "also run an HTTP forward proxy on this address")
		origin   = flag.String("origin", "", "route all requests to this origin address (default: use :host header)")
	)
	flag.Parse()

	sp, err := liveproxy.StartSPDYProxy(*addr, *origin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sp.Close()
	fmt.Printf("SPDY proxy listening on %s\n", sp.Addr())

	if *httpAddr != "" {
		hp, err := liveproxy.StartHTTPProxy(*httpAddr, *origin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer hp.Close()
		fmt.Printf("HTTP proxy listening on %s\n", hp.Addr())
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	sessions, streams := sp.Stats()
	fmt.Printf("served %d sessions, %d streams\n", sessions, streams)
}
