// Command simlint statically enforces the simulator's determinism,
// seeded-RNG and pool-discipline invariants (see internal/analysis).
//
// Standalone:
//
//	simlint ./...             lint packages, exit 1 on findings
//	simlint -dir path/to/dir  lint a bare directory (testdata fixtures)
//	simlint -list             print the suite and what each check does
//
// As a vet tool (the unitchecker protocol: cmd/go invokes the tool once
// per package with a JSON config file, export data for every import,
// and expects diagnostics on stderr and a nonzero exit):
//
//	go vet -vettool=$(go env GOPATH)/bin/simlint ./...
//
// Findings are suppressed with an in-source directive that names the
// analyzer and MUST carry a reason:
//
//	//lint:allow maprange counters are commutative; order cannot leak
//
// A reasonless directive is itself a finding — suppressions are
// documentation, not an off switch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spdier/internal/analysis"
	"spdier/internal/analysis/simlint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet-tool protocol probes arrive before normal flag parsing:
	// cmd/go asks for a version fingerprint (cache key) and the tool's
	// flag set before handing over .cfg files.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			// cmd/go keys its vet-result cache on this line; derive it
			// from the binary's contents so rebuilt analyzers invalidate
			// stale cached findings.
			fmt.Printf("simlint version %s\n", buildFingerprint())
			return 0
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}

	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	dir := fs.String("dir", "", "lint a bare directory of Go files instead of package patterns")
	list := fs.Bool("list", false, "describe the analyzer suite and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text on stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: simlint [-list] [-json] [-dir directory] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range simlint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *dir != "" {
		moduleRoot, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		diags, err := simlint.CheckDir(*dir, moduleRoot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		return report(diags, *jsonOut)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	// One store for the whole run: Load returns packages in go list
	// -deps order (dependencies first), so by the time a package is
	// analyzed every dependency's facts are already in the store.
	facts := analysis.NewFactStore()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := simlint.CheckFacts(pkg, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		all = append(all, diags...)
	}
	return report(all, *jsonOut)
}

// buildFingerprint hashes this executable so the version string (and
// with it cmd/go's vet cache key) changes whenever the suite does.
func buildFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%x", h.Sum64())
}

// jsonDiagnostic is the machine-readable finding shape -json emits.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func report(diags []analysis.Diagnostic, asJSON bool) int {
	if asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		if len(diags) == 0 {
			return 0
		}
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	fmt.Fprintf(os.Stderr, "simlint: %d finding(s); suppress intentional ones with `//lint:allow <analyzer> <reason>`\n", len(diags))
	return 1
}

// vetConfig is the unitchecker config cmd/go writes for -vettool
// invocations (a stable, documented subset of its fields). PackageVetx
// maps each dependency's import path to the facts file a previous unit
// wrote; VetxOutput is where this unit must write its own.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs one vet unit of work. Diagnostics go to stderr in the
// standard file:line:col form; exit status 2 signals findings to
// cmd/go. Facts make this a two-way protocol: the store is seeded from
// every dependency's .vetx file before the suite runs, and whatever the
// fact analyzers export is serialized to VetxOutput afterwards — which
// is why a VetxOnly unit (a dependency vetted only for its facts) still
// runs the suite; it merely suppresses the diagnostics.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: bad vet config %s: %v\n", cfgPath, err)
		return 1
	}
	simlint.RegisterFactTypes()
	facts := analysis.NewFactStore()
	for _, path := range sortedKeys(cfg.PackageVetx) {
		// A dependency outside the module wrote no facts (or an older
		// simlint wrote a placeholder); Decode ignores unrecognized
		// content, and a vanished file is treated the same way.
		vetx, readErr := os.ReadFile(cfg.PackageVetx[path])
		if readErr != nil {
			continue
		}
		if decErr := facts.Decode(vetx); decErr != nil {
			fmt.Fprintf(os.Stderr, "simlint: facts of %s: %v\n", path, decErr)
			return 1
		}
	}
	writeFacts := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		encoded, encErr := facts.Encode()
		if encErr == nil {
			encErr = os.WriteFile(cfg.VetxOutput, encoded, 0o666)
		}
		if encErr != nil {
			fmt.Fprintln(os.Stderr, "simlint:", encErr)
			return 1
		}
		return 0
	}
	analyzers, _ := simlint.ForPackage(cfg.ImportPath)
	if len(analyzers) == 0 {
		return writeFacts()
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	fset := token.NewFileSet()
	lookup := analysis.NewExportLookup(cfg.PackageFile, cfg.ImportMap, false, cfg.Dir)
	pkg, err := analysis.TypeCheck(fset, lookup.Importer(fset), cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts()
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	pkg.ImportPath = cfg.ImportPath
	diags, err := simlint.CheckFacts(pkg, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	if code := writeFacts(); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
