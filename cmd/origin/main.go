// Command origin runs the test origin server of the live track: an
// HTTP/1.1 server where /size/<n> returns n deterministic bytes — the
// "Test Server" box of the paper's Figure 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"spdier/internal/liveproxy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	origin, err := liveproxy.StartOrigin(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer origin.Close()
	fmt.Printf("origin listening on %s (try /size/10000)\n", origin.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Printf("served %d requests\n", origin.Served())
}
