module spdier

go 1.22
