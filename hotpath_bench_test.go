// Hot-path guardrail benchmarks. BenchmarkLoop and BenchmarkTransfer
// both assert their allocation budgets with testing.AllocsPerRun before
// timing anything, so a regression fails the benchmark run outright
// instead of silently shifting a trend line. Their headline numbers are
// collected and written to BENCH_hotpath.json by TestMain, which CI
// archives per commit.
//
//	go test -run '^$' -bench 'BenchmarkLoop$|BenchmarkTransfer$' -benchmem -benchtime=1x .
package spdier_test

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
)

// benchReport accumulates headline numbers from the guardrail
// benchmarks; TestMain serializes it to BENCH_hotpath.json after the
// run so the file reflects whichever benchmarks actually executed.
var benchReport = struct {
	sync.Mutex
	m map[string]map[string]float64
}{m: map[string]map[string]float64{}}

func reportBench(name string, metrics map[string]float64) {
	benchReport.Lock()
	benchReport.m[name] = metrics
	benchReport.Unlock()
}

// sweepReport collects the sweep-engine guardrail numbers separately, so
// BENCH_sweep.json tracks the population-scale path on its own trend
// line next to BENCH_hotpath.json.
var sweepReport = struct {
	sync.Mutex
	m map[string]map[string]float64
}{m: map[string]map[string]float64{}}

func reportSweep(name string, metrics map[string]float64) {
	sweepReport.Lock()
	sweepReport.m[name] = metrics
	sweepReport.Unlock()
}

func writeBenchFile(path string, report *struct {
	sync.Mutex
	m map[string]map[string]float64
}) {
	report.Lock()
	defer report.Unlock()
	if len(report.m) == 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report.m); err != nil {
		os.Stderr.WriteString(path + ": " + err.Error() + "\n")
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeBenchFile("BENCH_hotpath.json", &benchReport)
	writeBenchFile("BENCH_sweep.json", &sweepReport)
	os.Exit(code)
}

// BenchmarkLoop times the event-loop hot path — schedule with After,
// fire via RunUntilIdle — on a warm slot pool, and asserts it is
// allocation-free.
func BenchmarkLoop(b *testing.B) {
	loop := sim.NewLoop()
	fn := func() {}
	// Warm the slot pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		loop.After(time.Millisecond, fn)
	}
	loop.RunUntilIdle()

	if allocs := testing.AllocsPerRun(200, func() {
		loop.After(time.Millisecond, fn)
		loop.RunUntilIdle()
	}); allocs != 0 {
		b.Fatalf("After+fire allocates %.1f per op, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.After(time.Microsecond, fn)
		if i&1023 == 1023 {
			loop.RunUntilIdle()
		}
	}
	loop.RunUntilIdle()
	b.StopTimer()
	reportBench("BenchmarkLoop", map[string]float64{
		"ns_per_event":  float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"allocs_per_op": 0,
	})
}

// BenchmarkTransfer times a one-MSS write→serialize→deliver→ack round
// trip over an established, warmed-up connection and asserts the pooled
// segment path stays within its 2-allocation budget.
func BenchmarkTransfer(b *testing.B) {
	loop := sim.NewLoop()
	pc := netem.ProfileWiFi()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	path := netem.NewPath(loop, pc, sim.NewRNG(1), nil)
	nw := tcpsim.NewNetwork(loop, path)
	client, server := nw.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), "bench", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() {})
	client.Connect()
	loop.RunUntilIdle()
	if !client.Established() {
		b.Fatal("handshake did not complete")
	}

	mss := tcpsim.DefaultConfig().MSS
	// Warm the segment pool, event slots and per-connection queues.
	for i := 0; i < 200; i++ {
		server.Write(mss)
		loop.RunUntilIdle()
	}

	allocs := testing.AllocsPerRun(200, func() {
		server.Write(mss)
		loop.RunUntilIdle()
	})
	if allocs > 2 {
		b.Fatalf("segment round trip allocates %.1f per op, want <= 2", allocs)
	}

	b.ReportAllocs()
	b.SetBytes(int64(mss))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.Write(mss)
		loop.RunUntilIdle()
	}
	b.StopTimer()
	reportBench("BenchmarkTransfer", map[string]float64{
		"ns_per_roundtrip":     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"allocs_per_roundtrip": allocs,
	})
}
