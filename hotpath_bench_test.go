// Hot-path guardrail benchmarks. BenchmarkLoop and BenchmarkTransfer
// both assert their allocation budgets with testing.AllocsPerRun before
// timing anything, so a regression fails the benchmark run outright
// instead of silently shifting a trend line. Their headline numbers are
// collected and written to BENCH_hotpath.json by TestMain, which CI
// archives per commit.
//
//	go test -run '^$' -bench 'BenchmarkLoop$|BenchmarkTransfer$' -benchmem -benchtime=1x .
package spdier_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/experiment"
	"spdier/internal/fabric"
	"spdier/internal/netem"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

type benchReportT = struct {
	sync.Mutex
	m map[string]map[string]float64
}

// benchReport accumulates headline numbers from the guardrail
// benchmarks; TestMain serializes it to BENCH_hotpath.json after the
// run so the file reflects whichever benchmarks actually executed.
var benchReport = benchReportT{m: map[string]map[string]float64{}}

func reportBench(name string, metrics map[string]float64) {
	benchReport.Lock()
	benchReport.m[name] = metrics
	benchReport.Unlock()
}

// sweepReport collects the sweep-engine guardrail numbers separately, so
// BENCH_sweep.json tracks the population-scale path on its own trend
// line next to BENCH_hotpath.json.
var sweepReport = benchReportT{m: map[string]map[string]float64{}}

func reportSweep(name string, metrics map[string]float64) {
	sweepReport.Lock()
	sweepReport.m[name] = metrics
	sweepReport.Unlock()
}

// benchFiles names each BENCH file's report plus the benchmark entries
// it must never lose. A partial `-bench` run merges into the existing
// file instead of truncating it (a full-suite baseline survives
// single-benchmark runs), and a write that would still leave an expected
// entry missing fails loudly — that is exactly the corruption that once
// reduced BENCH_hotpath.json to a lone BenchmarkLoop entry.
var benchFiles = []struct {
	path     string
	report   *benchReportT
	expected []string
}{
	{"BENCH_hotpath.json", &benchReport, []string{"BenchmarkLoop", "BenchmarkPageLoadsPerHour", "BenchmarkTransfer"}},
	{"BENCH_sweep.json", &sweepReport, []string{"BenchmarkSweep", "BenchmarkSweepFabric"}},
}

// writeBenchFile merges a bench report into the existing file at path
// and rewrites it. Any failure — read, create, encode, close, or an
// expected benchmark entry missing from the merged result — is returned
// so TestMain can fail the run loudly: a silently truncated BENCH file
// breaks the perf trend line CI archives.
func writeBenchFile(path string, report *benchReportT, expected []string) error {
	report.Lock()
	defer report.Unlock()
	if len(report.m) == 0 {
		return nil
	}
	merged := map[string]map[string]float64{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			return fmt.Errorf("existing file unparsable (refusing to overwrite): %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for name, metrics := range report.m {
		merged[name] = metrics
	}
	var missing []string
	for _, name := range expected {
		if _, ok := merged[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmark entries %v missing after merge; run the full bench suite once to seed them", missing)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestMain(m *testing.M) {
	// Fabric worker re-exec mode: the fabric tests spawn this test binary
	// as their worker process, gated by env so a normal `go test` run
	// never enters it.
	if os.Getenv("SPDYSIM_FABRIC_WORKER") == "1" {
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout))
	}
	// SIM_SCHED=heap re-runs the whole binary on the 4-ary heap
	// scheduler, for wheel-vs-heap A/B benchmark comparisons.
	if os.Getenv("SIM_SCHED") == "heap" {
		sim.SetDefaultScheduler(sim.SchedulerHeap)
	}
	code := m.Run()
	for _, bf := range benchFiles {
		if err := writeBenchFile(bf.path, bf.report, bf.expected); err != nil {
			os.Stderr.WriteString("writing " + bf.path + ": " + err.Error() + "\n")
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// BenchmarkLoop times the event-loop hot path — schedule with After,
// fire via RunUntilIdle — on a warm slot pool, and asserts it is
// allocation-free.
func BenchmarkLoop(b *testing.B) {
	loop := sim.NewLoop()
	fn := func() {}
	// Warm the slot pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		loop.After(time.Millisecond, fn)
	}
	loop.RunUntilIdle()

	if allocs := testing.AllocsPerRun(200, func() {
		loop.After(time.Millisecond, fn)
		loop.RunUntilIdle()
	}); allocs != 0 {
		b.Fatalf("After+fire allocates %.1f per op, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.After(time.Microsecond, fn)
		if i&1023 == 1023 {
			loop.RunUntilIdle()
		}
	}
	loop.RunUntilIdle()
	b.StopTimer()
	nsPerEvent := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	reportBench("BenchmarkLoop", map[string]float64{
		"ns_per_event":  nsPerEvent,
		"allocs_per_op": 0,
		"scheduler":     float64(sim.DefaultScheduler()),
	})

	// Regression gate: when CI supplies the previous commit's numbers,
	// fail on a >20% ns/event increase (baselines are hardware-specific,
	// so the gate only runs when the env var is set).
	if path := os.Getenv("HOTPATH_BASELINE"); path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Logf("HOTPATH_BASELINE unreadable, skipping gate: %v", err)
			return
		}
		var baseline map[string]map[string]float64
		if err := json.Unmarshal(data, &baseline); err != nil {
			b.Logf("HOTPATH_BASELINE unparsable, skipping gate: %v", err)
			return
		}
		if want := baseline["BenchmarkLoop"]["ns_per_event"]; want > 0 && nsPerEvent > 1.2*want {
			b.Fatalf("event-loop hot path regressed >20%%: %.1f ns/event vs baseline %.1f", nsPerEvent, want)
		}
	}
}

// BenchmarkPageLoadsPerHour measures end-to-end simulation throughput in
// the unit the ROADMAP's city-scale arc budgets in: simulated page loads
// per wall-clock hour, on one machine, serially. Each iteration is a
// full experiment.Run — browser, proxy, TCP, radio-free WiFi path — over
// a Table 1 site slice with lean probing and a short think time, the
// configuration the population sweep uses for aggregate-only runs.
//
//	go test -run '^$' -bench 'BenchmarkPageLoadsPerHour$' -benchtime=5x .
func BenchmarkPageLoadsPerHour(b *testing.B) {
	opts := experiment.Options{
		Mode:      browser.ModeHTTP,
		Network:   experiment.NetWiFi,
		Sites:     webpage.Table1()[:6],
		ThinkTime: 10 * time.Second,
		LeanProbe: true,
	}
	pages := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		res := experiment.Run(opts)
		pages += len(res.Records) - res.Incomplete
	}
	b.StopTimer()
	perHour := float64(pages) / b.Elapsed().Hours()
	b.ReportMetric(perHour, "pages/hour")
	reportBench("BenchmarkPageLoadsPerHour", map[string]float64{
		"page_loads_per_hour": perHour,
		"pages_per_run":       float64(pages) / float64(b.N),
	})
}

// BenchmarkTransfer times a one-MSS write→serialize→deliver→ack round
// trip over an established, warmed-up connection and asserts the pooled
// segment path stays within its 2-allocation budget.
func BenchmarkTransfer(b *testing.B) {
	loop := sim.NewLoop()
	pc := netem.ProfileWiFi()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	path := netem.NewPath(loop, pc, sim.NewRNG(1), nil)
	nw := tcpsim.NewNetwork(loop, path)
	client, server := nw.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), "bench", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() {})
	client.Connect()
	loop.RunUntilIdle()
	if !client.Established() {
		b.Fatal("handshake did not complete")
	}

	mss := tcpsim.DefaultConfig().MSS
	// Warm the segment pool, event slots and per-connection queues.
	for i := 0; i < 200; i++ {
		server.Write(mss)
		loop.RunUntilIdle()
	}

	allocs := testing.AllocsPerRun(200, func() {
		server.Write(mss)
		loop.RunUntilIdle()
	})
	if allocs > 2 {
		b.Fatalf("segment round trip allocates %.1f per op, want <= 2", allocs)
	}

	b.ReportAllocs()
	b.SetBytes(int64(mss))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.Write(mss)
		loop.RunUntilIdle()
	}
	b.StopTimer()
	reportBench("BenchmarkTransfer", map[string]float64{
		"ns_per_roundtrip":     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"allocs_per_roundtrip": allocs,
	})
}
