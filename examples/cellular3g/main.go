// cellular3g demonstrates the paper's core cross-layer pathology on a
// single TCP connection, step by step: transfer, go idle long enough for
// the radio to demote, transfer again — and watch the stale RTO lose to
// the promotion delay, producing spurious retransmissions and a
// collapsed ssthresh. No browser, no proxy: just TCP and the radio.
package main

import (
	"fmt"
	"time"

	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
)

func transferAndReport(label string, resetRTT bool) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	cfg := netem.Profile3G()
	cfg.Up.LossRate, cfg.Down.LossRate = 0, 0 // isolate the radio effect
	path := netem.NewPath(loop, cfg, sim.NewRNG(7), radio)
	network := tcpsim.NewNetwork(loop, path)

	serverCfg := tcpsim.DefaultConfig()
	serverCfg.ResetRTTAfterIdle = resetRTT
	rec := tcpsim.NewRecorder()
	serverCfg.Probe = rec
	client, server := network.NewConnPair(tcpsim.DefaultConfig(), serverCfg, "demo", "device")

	received := 0
	client.OnDeliver(func(n int) { received += n })
	client.OnEstablished(func() { server.Write(300_000) })
	client.Connect()
	loop.Run(20 * sim.Second)
	fmt.Printf("[%s] after first transfer:  %6d KB, srtt=%v rto=%v cwnd=%.0f ssthresh=%.0f\n",
		label, received/1024, server.SRTT().Round(time.Millisecond), server.RTO().Round(time.Millisecond),
		server.Cwnd(), server.Ssthresh())

	// Idle 25 s: DCH→FACH at 5 s, FACH→IDLE at 17 s. The radio sleeps;
	// TCP's RTT estimate does not.
	idleEnd := loop.Now().Add(25 * time.Second)
	loop.At(idleEnd, func() {
		fmt.Printf("[%s] before second transfer: radio=%v, rto=%v (promotion delay will be %v)\n",
			label, radio.State(), server.RTO().Round(time.Millisecond), 2*time.Second)
		server.Write(300_000)
	})
	loop.Run(idleEnd.Add(30 * time.Second))

	fmt.Printf("[%s] after second transfer: %6d KB total\n", label, received/1024)
	fmt.Printf("[%s] RTO retransmissions=%d spurious arrivals=%d idle restarts=%d undo=%d\n",
		label, server.Retransmits, client.SpuriousArrivals, server.IdleRestarts, server.Undos)
	fmt.Printf("[%s] final cwnd=%.0f ssthresh=%.0f\n\n", label, server.Cwnd(), server.Ssthresh())
}

func main() {
	fmt.Println("--- stock TCP: RTT estimate survives the idle period ---")
	transferAndReport("stock", false)
	fmt.Println("--- with the paper's fix (§6.2.1): RTT estimate reset after idle ---")
	transferAndReport("fix", true)
}
