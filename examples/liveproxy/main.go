// liveproxy spins up the entire live stack in one process — origin
// server, SPDY proxy, latency conduit, multiplexing client — and fetches
// a mixed-priority batch of objects over one real TCP session, printing
// the per-stream timeline. This is the paper's Figure 2 testbed on
// loopback.
package main

import (
	"fmt"
	"os"
	"time"

	"spdier/internal/liveproxy"
	"spdier/internal/spdy"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	origin, err := liveproxy.StartOrigin("127.0.0.1:0")
	check(err)
	defer origin.Close()

	proxy, err := liveproxy.StartSPDYProxy("127.0.0.1:0", origin.Addr())
	check(err)
	defer proxy.Close()

	// 80 ms one-way, 6 Mbit/s — a decent 3G radio in CELL_DCH.
	conduit, err := liveproxy.StartConduit("127.0.0.1:0", proxy.Addr(), 80*time.Millisecond, 6_000_000)
	check(err)
	defer conduit.Close()

	client, err := liveproxy.DialSPDY(conduit.Addr())
	check(err)
	defer client.Close()

	rtt, err := client.Ping(1, 5*time.Second)
	check(err)
	fmt.Printf("session RTT through conduit: %v\n\n", rtt.Round(time.Millisecond))

	// A page-like batch: one document, two scripts, six images — all
	// requested at once, multiplexed on the single session, prioritized.
	type req struct {
		path string
		prio spdy.Priority
	}
	batch := []req{
		{"/size/40000", 0},  // document
		{"/size/25000", 2},  // script
		{"/size/20000", 2},  // script
		{"/size/120000", 4}, // images…
		{"/size/90000", 4},
		{"/size/150000", 4},
		{"/size/60000", 4},
		{"/size/80000", 4},
		{"/size/110000", 4},
	}
	type pending struct {
		req
		ch <-chan liveproxy.FetchResult
	}
	var reqs []pending
	start := time.Now()
	for _, r := range batch {
		ch, err := client.Get("test.example", r.path, r.prio)
		check(err)
		reqs = append(reqs, pending{req: r, ch: ch})
	}
	var total int
	for _, r := range reqs {
		res := <-r.ch
		check(res.Err)
		total += len(res.Body)
		fmt.Printf("prio %d  %-14s %7d bytes  firstByte=%6dms  done=%6dms\n",
			r.prio, r.path, len(res.Body),
			res.FirstByte.Milliseconds(), res.Done.Milliseconds())
	}
	fmt.Printf("\n%d bytes over one SPDY session in %v", total, time.Since(start).Round(time.Millisecond))
	sessions, streams := proxy.Stats()
	fmt.Printf(" (%d session, %d streams, origin served %d)\n", sessions, streams, origin.Served())
}
