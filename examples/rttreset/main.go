// rttreset runs the paper's §6.2.1 proposal as a full field-test
// comparison: twenty Table 1 pages over 3G with stock TCP versus TCP
// that resets its RTT estimate after idle, for both HTTP and SPDY.
package main

import (
	"fmt"

	"spdier/internal/browser"
	"spdier/internal/experiment"
)

func main() {
	fmt.Println("20 pages x 3G, 60 s apart; three seeds per condition")
	fmt.Println()
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		var basePLT, fixPLT, baseRetx, fixRetx float64
		const runs = 3
		for seed := uint64(1); seed <= runs; seed++ {
			base := experiment.Run(experiment.Options{
				Mode: mode, Network: experiment.Net3G, Seed: seed,
			})
			fix := experiment.Run(experiment.Options{
				Mode: mode, Network: experiment.Net3G, Seed: seed,
				ResetRTTAfterIdle: true,
			})
			for _, p := range base.PLTSeconds() {
				basePLT += p
			}
			for _, p := range fix.PLTSeconds() {
				fixPLT += p
			}
			baseRetx += float64(base.Retransmissions())
			fixRetx += float64(fix.Retransmissions())
		}
		n := float64(runs * 20)
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  stock TCP:      mean PLT %6.2fs   retx/run %6.1f\n", basePLT/n, baseRetx/runs)
		fmt.Printf("  RTT-reset fix:  mean PLT %6.2fs   retx/run %6.1f\n", fixPLT/n, fixRetx/runs)
		fmt.Printf("  improvement:    %.1f%% PLT, %.1f%% fewer retransmissions\n\n",
			100*(basePLT-fixPLT)/basePLT, 100*(baseRetx-fixRetx)/baseRetx)
	}
}
