// Quickstart: load one real-world-shaped page over an emulated 3G
// network with HTTP and with SPDY, and print the page load time and the
// per-object phase breakdown — the smallest possible use of the public
// simulation API.
package main

import (
	"fmt"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/proxy"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

func main() {
	// The page: site 7 from the paper's Table 1 (a news site, ~116
	// objects across ~28 domains).
	spec := webpage.Table1()[6]
	page := webpage.Generate(spec, sim.NewRNG(42))
	fmt.Printf("page: %s — %d objects, %d domains, %.0f KB\n\n",
		page.Name, len(page.Objects), len(page.Domains()), float64(page.TotalBytes())/1024)

	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		// A fresh 3G world per protocol: radio state machine, shaped
		// path, TCP demux, origin model, proxy host, browser.
		loop := sim.NewLoop()
		rng := sim.NewRNG(1)
		radio := rrc.NewMachine(loop, rrc.Profile3G())
		path := netem.NewPath(loop, netem.Profile3G(), rng.Fork(1), radio)
		network := tcpsim.NewNetwork(loop, path)
		origin := proxy.NewOrigin(loop, proxy.DefaultOriginConfig(), rng.Fork(2))
		prox := proxy.New(loop, origin)
		br := browser.New(loop, network, prox, browser.DefaultConfig(mode), rng.Fork(3))

		var rec *trace.PageRecord
		br.LoadPage(page, func(pr *trace.PageRecord) { rec = pr })
		loop.Run(120 * sim.Second)

		fmt.Printf("%s:  page load time %.2fs\n", mode, rec.PLT().Seconds())
		fmt.Printf("  mean object phases: init=%v wait=%v recv=%v\n",
			rec.MeanPhase((*trace.ObjectRecord).Init).Round(1e6),
			rec.MeanPhase((*trace.ObjectRecord).Wait).Round(1e6),
			rec.MeanPhase((*trace.ObjectRecord).Recv).Round(1e6))
		fmt.Printf("  radio promotions: %d, radio energy: %.1f J\n\n",
			radio.Promotions(), radio.EnergyMilliJoules()/1000)
	}
}
