// Package spdier_test is the benchmark harness: one benchmark per table
// and figure of the paper (each regenerates that result inside the
// simulator and reports its headline number via b.ReportMetric), the
// ablations DESIGN.md calls out, and micro-benchmarks for the hot paths
// (SPDY framing, header compression, the event loop, the TCP model).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig3 -benchtime=3x
package spdier_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/experiment"
	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

// benchExperiment runs one registered experiment per iteration with a
// single seed per condition and surfaces its metrics. Each requested
// metric gets its own b.Run sub-benchmark so `-bench Fig3/HTTP` can
// target one number and the per-metric timings don't smear together.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	spec, ok := experiment.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	if len(metrics) == 0 {
		for i := 0; i < b.N; i++ {
			spec.Run(experiment.Harness{Runs: 1, Seed: uint64(i + 1)})
		}
		return
	}
	for _, m := range metrics {
		b.Run(shortUnit(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := spec.Run(experiment.Harness{Runs: 1, Seed: uint64(i + 1)})
				if v, ok := r.Metrics[m]; ok {
					b.ReportMetric(v, shortUnit(m))
				}
			}
		})
	}
}

func shortUnit(metric string) string {
	// Benchmark metric names cannot contain spaces.
	out := make([]rune, 0, len(metric))
	for _, r := range metric {
		switch {
		case r == ' ' || r == ',' || r == '(' || r == ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// --- one benchmark per table and figure ---

func BenchmarkTable1Catalog(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig3PageLoad3G(b *testing.B) {
	benchExperiment(b, "fig3", "HTTP mean PLT", "SPDY mean PLT")
}
func BenchmarkFig4PageLoadWiFi(b *testing.B) {
	benchExperiment(b, "fig4", "HTTP mean PLT", "SPDY mean PLT")
}
func BenchmarkFig5ObjectBreakdown(b *testing.B) {
	benchExperiment(b, "fig5", "http mean init", "spdy mean wait")
}
func BenchmarkFig6RequestPatterns(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7TestPages(b *testing.B) {
	benchExperiment(b, "fig7", "http PLT, same domain", "spdy PLT, same domain")
}
func BenchmarkFig8ProxyQueue(b *testing.B) {
	benchExperiment(b, "fig8", "origin wait, mean", "proxy queue delay, mean")
}
func BenchmarkFig9Throughput(b *testing.B) {
	benchExperiment(b, "fig9", "HTTP/SPDY busy-transfer ratio")
}
func BenchmarkFig10BytesInFlight(b *testing.B) {
	benchExperiment(b, "fig10", "pages where more-inflight protocol is faster")
}
func BenchmarkFig11CwndTrace(b *testing.B) {
	benchExperiment(b, "fig11", "retransmission events", "cwnd max")
}
func BenchmarkFig12IdleZoom(b *testing.B) {
	benchExperiment(b, "fig12", "idle restarts (cwnd→IW) in window")
}
func BenchmarkFig13RetxBursts(b *testing.B) {
	benchExperiment(b, "fig13", "HTTP mean retransmissions/run", "SPDY mean retransmissions/run")
}
func BenchmarkFig14PingKeepalive(b *testing.B) {
	benchExperiment(b, "fig14", "SPDY retx reduction from ping")
}
func BenchmarkFig15SlowStartAfterIdle(b *testing.B) {
	benchExperiment(b, "fig15", "spdy mean PLT disabled")
}
func BenchmarkFig16LTE(b *testing.B) {
	benchExperiment(b, "fig16", "HTTP mean PLT", "SPDY mean PLT")
}
func BenchmarkFig17LTETrace(b *testing.B) {
	benchExperiment(b, "fig17", "retransmissions/run (LTE SPDY)")
}
func BenchmarkFig18RRCMachines(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkTable2TCPVariants(b *testing.B) {
	benchExperiment(b, "table2", "cubic spdy max cwnd", "reno spdy max cwnd")
}
func BenchmarkMultiConn(b *testing.B) {
	benchExperiment(b, "multiconn", "SPDY mean PLT, 20 sessions")
}
func BenchmarkRTTReset(b *testing.B) {
	benchExperiment(b, "rttreset", "spdy PLT improvement")
}
func BenchmarkMetricsCache(b *testing.B) {
	benchExperiment(b, "metricscache", "http mean PLT cache off")
}
func BenchmarkPipelining(b *testing.B) {
	benchExperiment(b, "pipelining", "pipelining improvement over HTTP")
}
func BenchmarkLateBinding(b *testing.B) {
	benchExperiment(b, "latebinding", "late vs early improvement")
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationPromotionDelay sweeps the 3G promotion delay and
// reports retransmissions per run: the paper's pathology should vanish
// when the promotion is shorter than the RTO and grow with it.
func BenchmarkAblationPromotionDelay(b *testing.B) {
	for _, promo := range []time.Duration{0, 500 * time.Millisecond, 2 * time.Second, 4 * time.Second} {
		b.Run(fmt.Sprintf("promo=%v", promo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loop := sim.NewLoop()
				profile := rrc.Profile3G()
				profile.PromotionDelay[rrc.Idle3G] = promo
				profile.PromotionDelay[rrc.FACH] = promo * 3 / 4
				radio := rrc.NewMachine(loop, profile)
				pc := netem.Profile3G()
				pc.Up.LossRate, pc.Down.LossRate = 0, 0
				path := netem.NewPath(loop, pc, sim.NewRNG(uint64(i+1)), radio)
				nw := tcpsim.NewNetwork(loop, path)
				client, server := nw.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), "ab", "d")
				client.OnDeliver(func(int) {})
				client.OnEstablished(func() { server.Write(200_000) })
				client.Connect()
				loop.Run(30 * sim.Second)
				// Idle long enough to sleep the radio, then resume.
				resume := loop.Now().Add(25 * time.Second)
				loop.At(resume, func() { server.Write(200_000) })
				loop.Run(resume.Add(60 * time.Second))
				b.ReportMetric(float64(server.Retransmits), "retx")
			}
		})
	}
}

// BenchmarkAblationDependencyDepth sweeps page script intensity: deeper
// dependency chains should stretch SPDY's request waves (Figure 6).
func BenchmarkAblationDependencyDepth(b *testing.B) {
	for _, jscss := range []float64{0, 20, 80} {
		b.Run(fmt.Sprintf("jscss=%.0f", jscss), func(b *testing.B) {
			spec := webpage.SiteSpec{
				Index: 99, Category: "synthetic", TotalObjs: 120,
				AvgSizeKB: 1200, Domains: 10, TextObjs: 5, JSCSS: jscss,
				ImgsOther: 115 - jscss,
			}
			for i := 0; i < b.N; i++ {
				res := experiment.Run(experiment.Options{
					Mode: browser.ModeSPDY, Network: Net3GAlias,
					Seed:  uint64(i + 1),
					Sites: []webpage.SiteSpec{spec},
				})
				rec := res.Records[0]
				var first, last float64
				for _, or := range rec.Objects {
					t := or.Requested.Sub(rec.Start).Seconds()
					if first == 0 || t < first {
						first = t
					}
					if t > last {
						last = t
					}
				}
				b.ReportMetric(last-first, "req-span-s")
				b.ReportMetric(rec.PLT().Seconds(), "plt-s")
			}
		})
	}
}

// Net3GAlias avoids importing the experiment constant under a clash-free
// name in this package.
const Net3GAlias = experiment.Net3G

// BenchmarkAblationInitialCwnd sweeps IW (the RFC 6928 debate in §7).
func BenchmarkAblationInitialCwnd(b *testing.B) {
	for _, iw := range []float64{3, 10, 32} {
		b.Run(fmt.Sprintf("iw=%.0f", iw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loop := sim.NewLoop()
				path := netem.NewPath(loop, netem.ProfileWiFi(), sim.NewRNG(uint64(i+1)), nil)
				nw := tcpsim.NewNetwork(loop, path)
				scfg := tcpsim.DefaultConfig()
				scfg.InitialCwnd = iw
				client, server := nw.NewConnPair(tcpsim.DefaultConfig(), scfg, "iw", "d")
				var done sim.Time
				total := 0
				client.OnDeliver(func(n int) {
					total += n
					if total == 120_000 {
						done = loop.Now()
					}
				})
				client.OnEstablished(func() { server.Write(120_000) })
				client.Connect()
				loop.Run(20 * sim.Second)
				b.ReportMetric(done.Seconds()*1000, "transfer-ms")
			}
		})
	}
}

// --- sweep harness: serial vs parallel vs cached ---

// sweepBench is the condition the runner benchmarks fan out: a full
// 20-site HTTP session per seed.
func sweepBench(b *testing.B, parallel int) {
	b.Helper()
	h := experiment.Harness{Runs: 4, Seed: 1}
	base := experiment.Options{Mode: browser.ModeHTTP, Network: experiment.NetWiFi}
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration so the cache cannot mask the
		// simulation cost being compared.
		r := experiment.NewRunner(parallel)
		results := r.Sweep(h, base)
		b.ReportMetric(float64(len(results)), "runs")
	}
}

func BenchmarkSweepSerial(b *testing.B)   { sweepBench(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, 0) }

// BenchmarkSweepCached measures replaying a memoized sweep: after the
// first iteration every lookup is a cache hit.
func BenchmarkSweepCached(b *testing.B) {
	h := experiment.Harness{Runs: 4, Seed: 1}
	base := experiment.Options{Mode: browser.ModeHTTP, Network: experiment.NetWiFi}
	r := experiment.NewRunner(0)
	r.Sweep(h, base) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sweep(h, base)
	}
	b.StopTimer()
	s := r.CacheStats()
	b.ReportMetric(s.HitRate()*100, "hit%")
}

// --- micro-benchmarks ---

func BenchmarkSPDYFramerDataThroughput(b *testing.B) {
	var buf bytes.Buffer
	f := spdy.NewFramer(&buf)
	payload := make([]byte, 8<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := f.WriteFrame(spdy.DataFrame{StreamID: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPDYHeaderCompression(b *testing.B) {
	o := spdy.NewSizeOracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := spdy.RequestHeaders("GET", "http", "www.example.com", fmt.Sprintf("/obj/%d", i), "ua")
		o.FrameSize(spdy.SynStream{StreamID: uint32(i*2 + 1), Headers: h})
	}
}

func BenchmarkSPDYFrameRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		tx := spdy.NewFramer(&buf)
		rx := spdy.NewFramer(&buf)
		tx.WriteFrame(spdy.SynStream{StreamID: 1, Headers: spdy.Headers{":method": "GET", ":path": "/"}})
		if _, err := rx.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventLoopThroughput(b *testing.B) {
	loop := sim.NewLoop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.After(time.Microsecond, func() {})
		if i%1024 == 0 {
			loop.RunUntilIdle()
		}
	}
	loop.RunUntilIdle()
}

func BenchmarkTCPSimBulkTransfer(b *testing.B) {
	// Simulated megabytes per wall-clock second: the simulator's core cost.
	b.SetBytes(1_000_000)
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop()
		path := netem.NewPath(loop, netem.ProfileWiFi(), sim.NewRNG(uint64(i+1)), nil)
		nw := tcpsim.NewNetwork(loop, path)
		client, server := nw.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), "bulk", "d")
		client.OnDeliver(func(int) {})
		client.OnEstablished(func() { server.Write(1_000_000) })
		client.Connect()
		loop.Run(sim.Forever)
	}
}

func BenchmarkFullPageLoadSimulated(b *testing.B) {
	page := webpage.Generate(webpage.Table1()[6], sim.NewRNG(1))
	for i := 0; i < b.N; i++ {
		res := experiment.Run(experiment.Options{
			Mode: browser.ModeSPDY, Network: experiment.Net3G,
			Seed:  uint64(i + 1),
			Pages: []*webpage.Page{page},
		})
		b.ReportMetric(res.Records[0].PLT().Seconds(), "plt-s")
	}
}

func BenchmarkRNG(b *testing.B) {
	r := sim.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkPageGeneration(b *testing.B) {
	spec := webpage.Table1()[14] // the 323-object site
	for i := 0; i < b.N; i++ {
		webpage.Generate(spec, sim.NewRNG(uint64(i)))
	}
}
