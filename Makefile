# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race lint fmt fixture-check

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/liveproxy/ ./internal/validate/

# Static enforcement of the simulator's determinism, seeded-RNG and
# pool-discipline invariants (TESTING.md, "Layer 0"). Runs the suite
# twice: standalone over the module, and through go vet's -vettool
# protocol so _test.go files are linted too.
lint:
	$(GO) run ./cmd/simlint ./...
	$(GO) build -o $(CURDIR)/.simlint.bin ./cmd/simlint
	$(GO) vet -vettool=$(CURDIR)/.simlint.bin ./...
	@rm -f $(CURDIR)/.simlint.bin

# The seeded fixture must keep tripping every analyzer in the suite.
fixture-check:
	@if $(GO) run ./cmd/simlint -dir internal/analysis/testdata/fixture; then \
		echo "fixture produced no findings -- an analyzer has gone silent"; exit 1; \
	else \
		echo "fixture canary OK (simlint exits nonzero on seeded violations)"; \
	fi

fmt:
	gofmt -w .
